package trace

import (
	"math"
	"strings"
	"testing"
)

func TestRecordAndTotals(t *testing.T) {
	r := New()
	r.Record(0, PhaseCompute, 0, 5)
	r.Record(0, PhaseWrite, 5, 6)
	r.Record(0, PhaseCompute, 6, 11)
	r.Record(1, PhaseCompute, 0, 10)
	r.Record(1, PhaseSync, 10, 12)
	r.Record(1, PhaseCompute, 3, 3)                // zero-length: dropped
	r.Record(1, PhaseCompute, 4, 2)                // reversed: dropped
	(*Recorder)(nil).Record(0, PhaseCompute, 0, 1) // nil-safe

	spans := r.Spans()
	if len(spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(spans))
	}
	// Sorted by (rank, t0).
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.T0 > b.T0) {
			t.Fatalf("spans not sorted at %d", i)
		}
	}
	tot := r.Totals()
	if math.Abs(tot[0][PhaseCompute]-10) > 1e-12 || tot[0][PhaseWrite] != 1 {
		t.Fatalf("rank 0 totals %v", tot[0])
	}
	if tot[1][PhaseSync] != 2 {
		t.Fatalf("rank 1 totals %v", tot[1])
	}
}

func TestTimelineRendering(t *testing.T) {
	r := New()
	r.Record(0, PhaseCompute, 0, 8)
	r.Record(0, PhaseWrite, 8, 10)
	r.Record(1, PhaseCompute, 0, 10)
	var b strings.Builder
	if err := r.Timeline(&b, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "rank   1") {
		t.Fatalf("missing rank rows:\n%s", out)
	}
	// Rank 0's row ends in W glyphs; rank 1's is all compute.
	lines := strings.Split(out, "\n")
	var row0, row1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "rank   0") {
			row0 = l
		}
		if strings.HasPrefix(l, "rank   1") {
			row1 = l
		}
	}
	if !strings.Contains(row0, "W") || strings.Contains(row1, "W") {
		t.Fatalf("glyph placement wrong:\n%s\n%s", row0, row1)
	}
	if !strings.Contains(out, "compute  max over ranks: 10.000s") {
		t.Fatalf("totals footer wrong:\n%s", out)
	}
	if !strings.Contains(out, "write    max over ranks: 2.000s") {
		t.Fatalf("write footer wrong:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var b strings.Builder
	if err := New().Timeline(&b, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no spans") {
		t.Fatal("empty recorder not reported")
	}
}

func TestTimelineGolden(t *testing.T) {
	r := New()
	r.Record(0, PhaseCompute, 0, 8)
	r.Record(0, PhaseWrite, 8, 10)
	r.Record(1, PhaseCompute, 0, 9)
	r.Record(1, PhaseRead, 9, 10)
	var b strings.Builder
	if err := r.Timeline(&b, 20); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"timeline over 10.000s (= compute, W write, R read, S sync, D drain)",
		"rank   0 ================WWWW",
		"rank   1 ==================RR",
		"compute  max over ranks: 9.000s",
		"read     max over ranks: 1.000s",
		"write    max over ranks: 2.000s",
		"",
	}, "\n")
	if b.String() != want {
		t.Fatalf("timeline output:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestTimelineClampsSpansOutsideAxis(t *testing.T) {
	// A span starting before t=0 (clocks may start negative) must render
	// clamped to the first column instead of indexing out of range.
	r := New()
	r.Record(0, PhaseWrite, -0.5, 2)
	r.Record(0, PhaseCompute, 2, 10)
	var b strings.Builder
	if err := r.Timeline(&b, 20); err != nil {
		t.Fatal(err)
	}
	row := ""
	for _, l := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(l, "rank   0") {
			row = l
		}
	}
	if !strings.HasPrefix(row, "rank   0 WWW") {
		t.Fatalf("negative-start span not clamped to column 0: %q", row)
	}
}

func TestTimelineAllSpansNonpositive(t *testing.T) {
	// Every span at or before t=0: maxT would be 0 and the column math
	// divides by it. Must render (everything in the first column), not
	// panic or emit NaN columns.
	r := New()
	r.Record(0, PhaseWrite, -2, -1)
	r.Record(1, PhaseCompute, -3, -0.5)
	var b strings.Builder
	if err := r.Timeline(&b, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rank   0 W") || !strings.Contains(out, "rank   1 =") {
		t.Fatalf("nonpositive-time spans missing:\n%s", out)
	}
}

func TestOverlapFavorsIO(t *testing.T) {
	r := New()
	r.Record(0, PhaseCompute, 0, 10)
	r.Record(0, PhaseWrite, 4, 6) // inside the compute span
	var b strings.Builder
	r.Timeline(&b, 20)
	row := ""
	for _, l := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(l, "rank   0") {
			row = l
		}
	}
	if !strings.Contains(row, "W") {
		t.Fatalf("I/O hidden under compute glyphs: %q", row)
	}
}

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Structured exporters for recorded phase traces. Both formats carry the
// same spans as the ASCII timeline, ordered by (rank, start), so output
// for a deterministic run (fixed seed on a simulated platform) is
// byte-identical across runs.

// WriteJSONL writes one JSON object per span:
//
//	{"rank":0,"phase":"compute","t0":0,"t1":1.5}
//
// Times are in seconds (virtual seconds on simulated platforms).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, s := range r.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one complete ("ph":"X") event of the Chrome trace
// format. Times are microseconds.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// chromeTrace is the JSON Object Format variant of the Chrome trace file,
// loadable in chrome://tracing and Perfetto.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the spans in Chrome trace format: one complete
// event per span, with the rank as the thread id, so chrome://tracing
// (or Perfetto) renders the same per-rank lanes as the ASCII timeline.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	ct := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: s.Phase,
			Cat:  "phase",
			Ph:   "X",
			Ts:   s.T0 * 1e6,
			Dur:  (s.T1 - s.T0) * 1e6,
			Pid:  0,
			Tid:  s.Rank,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// WriteFile is a small convenience used by cmd/genxbench: it dispatches
// on format ("jsonl" or "chrome").
func (r *Recorder) WriteFile(w io.Writer, format string) error {
	switch format {
	case "jsonl":
		return r.WriteJSONL(w)
	case "chrome":
		return r.WriteChromeTrace(w)
	}
	return fmt.Errorf("trace: unknown export format %q (want jsonl or chrome)", format)
}

// Package trace records per-rank phase intervals (compute, visible I/O,
// restart reads, sync waits) and renders them as an ASCII timeline — the
// kind of phase profile the paper's authors used to attribute visible I/O
// cost and argue for overlap (their sync interface exists precisely "for
// performance analysis and debugging"). On simulated platforms the
// timeline is in virtual seconds and is deterministic.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Phase labels used by rocman; applications may record their own.
const (
	PhaseCompute = "compute"
	PhaseWrite   = "write"
	PhaseRead    = "read"
	PhaseSync    = "sync"
	// PhaseDrain is background server writeback overlapped with client
	// computation (rocpanda's AsyncDrain writer pool); servers record it
	// on timeline rows after the client ranks.
	PhaseDrain = "drain"
)

// Span is one recorded interval on one rank. The JSON field names are
// the JSONL export format (export.go).
type Span struct {
	Rank  int     `json:"rank"`
	Phase string  `json:"phase"`
	T0    float64 `json:"t0"`
	T1    float64 `json:"t1"`
}

// Recorder collects spans from many ranks. It is safe for concurrent use
// (the real backend records from multiple goroutines).
type Recorder struct {
	mu    sync.Mutex
	spans []Span
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Record appends one interval; zero-length and reversed intervals are
// dropped.
func (r *Recorder) Record(rank int, phase string, t0, t1 float64) {
	if r == nil || t1 <= t0 {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Rank: rank, Phase: phase, T0: t0, T1: t1})
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans sorted by (rank, start).
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].T0 < out[j].T0
	})
	return out
}

// Totals returns the summed duration per phase per rank.
func (r *Recorder) Totals() map[int]map[string]float64 {
	out := make(map[int]map[string]float64)
	for _, s := range r.Spans() {
		m := out[s.Rank]
		if m == nil {
			m = make(map[string]float64)
			out[s.Rank] = m
		}
		m[s.Phase] += s.T1 - s.T0
	}
	return out
}

// clamp restricts a column index to [0, width).
func clamp(c, width int) int {
	if c < 0 {
		return 0
	}
	if c >= width {
		return width - 1
	}
	return c
}

// phaseGlyphs maps well-known phases to timeline characters.
var phaseGlyphs = map[string]byte{
	PhaseCompute: '=',
	PhaseWrite:   'W',
	PhaseRead:    'R',
	PhaseSync:    'S',
	PhaseDrain:   'D',
}

// Timeline renders one line per rank, width columns across [0, maxT],
// with a per-phase totals footer. Overlapping spans resolve in favor of
// the non-compute phase (I/O is what the reader is looking for).
func (r *Recorder) Timeline(w io.Writer, width int) error {
	spans := r.Spans()
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "trace: no spans recorded")
		return err
	}
	if width < 10 {
		width = 10
	}
	var maxT float64
	ranks := map[int]bool{}
	for _, s := range spans {
		if s.T1 > maxT {
			maxT = s.T1
		}
		ranks[s.Rank] = true
	}
	// All spans can end at or before t=0 (clocks are allowed to start
	// negative); the column math below divides by maxT, so give the axis
	// a positive extent and let clamping place everything in column 0.
	if maxT <= 0 {
		maxT = 1
	}
	order := make([]int, 0, len(ranks))
	for rk := range ranks {
		order = append(order, rk)
	}
	sort.Ints(order)

	fmt.Fprintf(w, "timeline over %.3fs (%c compute, %c write, %c read, %c sync, %c drain)\n",
		maxT, phaseGlyphs[PhaseCompute], phaseGlyphs[PhaseWrite], phaseGlyphs[PhaseRead], phaseGlyphs[PhaseSync], phaseGlyphs[PhaseDrain])
	for _, rk := range order {
		line := []byte(strings.Repeat(".", width))
		for _, s := range spans {
			if s.Rank != rk {
				continue
			}
			g, ok := phaseGlyphs[s.Phase]
			if !ok {
				g = '?'
			}
			// Clamp both endpoints into [0, width): spans may start
			// before t=0, and a start within rounding distance of maxT
			// must still paint the final column, not vanish.
			c0 := clamp(int(s.T0/maxT*float64(width)), width)
			c1 := clamp(int(s.T1/maxT*float64(width)), width)
			for c := c0; c <= c1; c++ {
				if line[c] == '.' || line[c] == phaseGlyphs[PhaseCompute] {
					line[c] = g
				}
			}
		}
		fmt.Fprintf(w, "rank %3d %s\n", rk, line)
	}

	// Footer: per-phase totals across ranks (max over ranks, the number
	// the paper's tables report).
	totals := r.Totals()
	phases := map[string]bool{}
	for _, m := range totals {
		for p := range m {
			phases[p] = true
		}
	}
	names := make([]string, 0, len(phases))
	for p := range phases {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		var max float64
		for _, m := range totals {
			if m[p] > max {
				max = m[p]
			}
		}
		fmt.Fprintf(w, "%-8s max over ranks: %.3fs\n", p, max)
	}
	return nil
}

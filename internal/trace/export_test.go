package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func exportRecorder() *Recorder {
	r := New()
	r.Record(1, PhaseCompute, 0, 2)
	r.Record(0, PhaseCompute, 0, 1.5)
	r.Record(0, PhaseWrite, 1.5, 1.75)
	return r
}

func TestWriteJSONL(t *testing.T) {
	var b strings.Builder
	if err := exportRecorder().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), b.String())
	}
	// Ordered by (rank, t0); every line parses back to the span.
	var s Span
	if err := json.Unmarshal([]byte(lines[0]), &s); err != nil {
		t.Fatal(err)
	}
	if s.Rank != 0 || s.Phase != PhaseCompute || s.T1 != 1.5 {
		t.Fatalf("first span %+v", s)
	}
	if err := json.Unmarshal([]byte(lines[2]), &s); err != nil {
		t.Fatal(err)
	}
	if s.Rank != 1 || s.T1 != 2 {
		t.Fatalf("last span %+v", s)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var b strings.Builder
	if err := exportRecorder().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &ct); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(ct.TraceEvents) != 3 || ct.DisplayTimeUnit != "ms" {
		t.Fatalf("trace %+v", ct)
	}
	ev := ct.TraceEvents[1] // rank 0's write span
	if ev.Name != PhaseWrite || ev.Ph != "X" || ev.Tid != 0 {
		t.Fatalf("event %+v", ev)
	}
	// Microsecond conversion: 1.5s -> 1.5e6, 0.25s -> 2.5e5.
	if ev.Ts != 1.5e6 || ev.Dur != 0.25e6 {
		t.Fatalf("event times ts=%v dur=%v", ev.Ts, ev.Dur)
	}
}

func TestExportDeterministic(t *testing.T) {
	// Same spans recorded in different orders must export identically:
	// the exports sort by (rank, start) exactly like Spans().
	a, b := New(), New()
	a.Record(0, PhaseCompute, 0, 1)
	a.Record(1, PhaseWrite, 1, 2)
	a.Record(0, PhaseSync, 2, 3)
	b.Record(0, PhaseSync, 2, 3)
	b.Record(0, PhaseCompute, 0, 1)
	b.Record(1, PhaseWrite, 1, 2)
	for _, format := range []string{"jsonl", "chrome"} {
		var sa, sb strings.Builder
		if err := a.WriteFile(&sa, format); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteFile(&sb, format); err != nil {
			t.Fatal(err)
		}
		if sa.String() != sb.String() {
			t.Fatalf("%s export order-dependent:\n%s\nvs\n%s", format, sa.String(), sb.String())
		}
	}
	var bad strings.Builder
	if err := New().WriteFile(&bad, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

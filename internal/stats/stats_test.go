package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(3)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Exp(5)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("exp mean = %v, want ~5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(4)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-10) > 0.05 {
		t.Fatalf("normal mean = %v", s.Mean)
	}
	if math.Abs(s.Std-2) > 0.05 {
		t.Fatalf("normal std = %v", s.Std)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(5)
	if got := r.LogNormalAround(3, 0); got != 3 {
		t.Fatalf("sigma=0 returned %v", got)
	}
	below := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.LogNormalAround(3, 0.5) < 3 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("median off: %v below center", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(6)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N=%d mean=%v", s.N, s.Mean)
	}
	if math.Abs(s.Std-2.138) > 0.001 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.CI95 <= 0 {
		t.Fatal("CI95 not positive")
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.CI95 != 0 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		if s.Min > s.Mean || s.Mean > s.Max {
			return false
		}
		if s.Std < 0 || s.CI95 < 0 {
			return false
		}
		if Mean(xs) != s.Mean {
			return false
		}
		return MinOf(xs) == s.Min && MaxOf(xs) == s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCrit(t *testing.T) {
	if tCrit(0) != 0 {
		t.Fatal("tCrit(0) != 0")
	}
	if tCrit(1) != 12.706 {
		t.Fatal("tCrit(1) wrong")
	}
	if tCrit(1000) != 1.96 {
		t.Fatal("large-df tCrit not normal")
	}
	// Monotone decreasing toward 1.96.
	prev := tCrit(1)
	for df := 2; df < 60; df++ {
		c := tCrit(df)
		if c > prev {
			t.Fatalf("tCrit not monotone at df=%d", df)
		}
		if c < 1.96 {
			t.Fatalf("tCrit(%d)=%v below normal limit", df, c)
		}
		prev = c
	}
}

// Package stats provides the deterministic pseudo-random number generator
// and the summary statistics used by the simulation models and the
// experiment harness (the paper reports means with 95% confidence
// intervals over repeated runs).
package stats

import "math"

// RNG is a small, fast, deterministic generator (splitmix64). It is the
// only source of randomness in the simulator, so a seed fully determines a
// run.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo,hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normally distributed value (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormalAround returns a value whose log is normal, centered so the
// median is m with multiplicative spread sigma (sigma=0 returns m). Used
// for block-size and noise-burst distributions.
func (r *RNG) LogNormalAround(m, sigma float64) float64 {
	if sigma <= 0 {
		return m
	}
	return m * math.Exp(r.Normal(0, sigma))
}

// Split returns a new generator derived from this one, so independent
// subsystems can be given independent deterministic streams.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation
	Min  float64
	Max  float64
	CI95 float64 // half-width of the 95% confidence interval of the mean
}

// Summarize computes descriptive statistics of xs. An empty sample returns
// the zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
		s.CI95 = tCrit(s.N-1) * s.Std / math.Sqrt(float64(s.N))
	}
	return s
}

// tCrit returns the two-sided 95% critical value of Student's t
// distribution for df degrees of freedom (table for small df, normal
// approximation beyond).
func tCrit(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
		2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
		2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
		2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinOf returns the smallest value in xs. It panics on an empty slice.
func MinOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// MaxOf returns the largest value in xs. It panics on an empty slice.
func MaxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

module genxio

go 1.24

// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus micro-benchmarks of the substrates. The experiment benches
// run reduced configurations so a single iteration stays in seconds; the
// full-scale numbers (recorded in EXPERIMENTS.md) come from cmd/genxbench.
package genxio_test

import (
	"fmt"
	"testing"

	"genxio"
	"genxio/internal/experiments"
	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/sim"
	"genxio/internal/stats"
)

// BenchmarkTable1 regenerates Table 1 (Turing: computation time, visible
// I/O for Rochdf / T-Rochdf / Rocpanda, restart latencies) at reduced
// mesh scale.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(experiments.Table1Opts{
			Procs: []int{16, 32}, Scale: 0.1, Runs: 1, Stride: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		r := res.Rows[0]
		b.ReportMetric(r.VisRochdf, "rochdf-vis-s")
		b.ReportMetric(r.VisRocpanda, "panda-vis-s")
		b.ReportMetric(r.RestartPanda, "panda-restart-s")
	}
}

// BenchmarkFig3a regenerates Figure 3(a) (Frost: apparent aggregate write
// throughput, fixed data per processor) at reduced size.
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3a(experiments.Fig3aOpts{
			Procs: []int{15, 60}, BytesPerProc: 128 << 10, Runs: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Panda.Mean, "panda-MBps")
		b.ReportMetric(last.Rochdf.Mean, "rochdf-MBps")
	}
}

// BenchmarkFig3b regenerates Figure 3(b) (Frost: computation time under
// the 16NS / 15NS / 15S node configurations) at reduced node counts.
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3b(experiments.Fig3bOpts{
			Nodes: []int{1, 4}, Runs: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.T16NS.Mean, "16NS-s")
		b.ReportMetric(last.T15NS.Mean, "15NS-s")
		b.ReportMetric(last.T15S.Mean, "15S-s")
	}
}

// BenchmarkAblationActiveBuffering measures the visible-cost reduction of
// the paper's central overlap mechanism.
func BenchmarkAblationActiveBuffering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblations(experiments.AblationOpts{Scale: 0.08, Procs: 16})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkHDFProfileHDF4 and ...HDF5 are the dataset-count scaling
// ablation ([13]): creating many datasets in one file under each profile.
func benchmarkHDFProfile(b *testing.B, profile hdf.CostProfile) {
	fs := rt.NewMemFS()
	clock := rt.NewWallClock()
	data := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := hdf.Create(fs, "bench.rhdf", clock, profile)
		if err != nil {
			b.Fatal(err)
		}
		for d := 0; d < 500; d++ {
			if err := w.CreateDataset(fmt.Sprintf("d%04d", d), hdf.U8, []int64{1024}, nil, data); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHDFProfileHDF4(b *testing.B) { benchmarkHDFProfile(b, hdf.HDF4Profile()) }
func BenchmarkHDFProfileHDF5(b *testing.B) { benchmarkHDFProfile(b, hdf.HDF5Profile()) }

// BenchmarkHDFWriteRead measures real RHDF throughput on the real backend.
func BenchmarkHDFWriteRead(b *testing.B) {
	fs := rt.NewMemFS()
	clock := rt.NewWallClock()
	payload := hdf.F64Bytes(make([]float64, 64<<10))
	b.SetBytes(int64(2 * len(payload)))
	for i := 0; i < b.N; i++ {
		w, _ := hdf.Create(fs, "t.rhdf", clock, hdf.NullProfile())
		if err := w.CreateDataset("x", hdf.F64, []int64{64 << 10}, nil, payload); err != nil {
			b.Fatal(err)
		}
		w.Close()
		r, err := hdf.Open(fs, "t.rhdf", clock, hdf.NullProfile())
		if err != nil {
			b.Fatal(err)
		}
		ds, _ := r.Lookup("x")
		if _, err := r.ReadData(ds); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// BenchmarkIOSetCodec measures the wire codec used for client-to-server
// block shipping.
func BenchmarkIOSetCodec(b *testing.B) {
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.4, Length: 1,
		BR: 1, BT: 1, BZ: 1, NodesPerBlock: 2000,
	}, 1, stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	rc := roccom.New()
	w, _ := rc.NewWindow("fluid")
	w.NewAttribute(roccom.AttrSpec{Name: "p", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
	p, _ := w.RegisterPane(1, blocks[0])
	sets, _ := roccom.PaneIOSets(w, p, "all")
	enc := roccom.EncodeIOSets(sets)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc = roccom.EncodeIOSets(sets)
		if _, err := roccom.DecodeIOSets(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartition measures the LPT block partitioner on the full
// lab-scale mesh.
func BenchmarkPartition(b *testing.B) {
	blocks, err := genxio.LabScale(0.5).Blocks()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.Partition(blocks, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEngine measures raw discrete-event throughput: events/sec of
// the kernel under a ping-pong of timed waits.
func BenchmarkSimEngine(b *testing.B) {
	env := sim.NewEnv()
	const events = 100000
	env.Spawn("ticker", func(p *sim.Proc) {
		for i := 0; i < events; i++ {
			p.Wait(1e-6)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	_ = b.N
}

// BenchmarkChanWorldPingPong measures the real goroutine backend's message
// latency.
func BenchmarkChanWorldPingPong(b *testing.B) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	payload := make([]byte, 1024)
	err := world.Run(2, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		if c.Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Send(1, 0, payload)
				c.Recv(1, 1)
			}
			b.StopTimer()
			return nil
		}
		for i := 0; i < b.N; i++ {
			c.Recv(0, 0)
			c.Send(0, 1, payload)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntegratedRealRun measures a full (tiny) integrated run on the
// real backend, end to end: physics, Roccom, Rocpanda, real files.
func BenchmarkIntegratedRealRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs := genxio.NewMemFS()
		world := genxio.NewLocalWorld(fs, 1)
		cfg := genxio.Config{
			Workload: genxio.Scalability(3, 64<<10),
			IO:       genxio.IORocpanda,
			Profile:  genxio.NullProfile(),
			Rocpanda: genxio.RocpandaConfig{NumServers: 1, ActiveBuffering: true},
		}
		err := world.Run(4, func(ctx genxio.Ctx) error {
			_, err := genxio.Run(ctx, cfg)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPandaCollective measures the classic Panda regular-array
// collective write+read (the paper's [19] baseline) through the public
// facade: a 256x256 global array over 4 clients and 2 servers.
func BenchmarkPandaCollective(b *testing.B) {
	spec := genxio.PandaArraySpec{Name: "a", Dims: []int{256, 256}, ClientMesh: []int{2, 2}}
	srv := []int{0, 1}
	b.SetBytes(int64(8 * spec.NumElems()))
	for i := 0; i < b.N; i++ {
		fs := genxio.NewMemFS()
		world := genxio.NewLocalWorld(fs, 1)
		err := world.Run(6, func(ctx genxio.Ctx) error {
			c := ctx.Comm()
			var data []float64
			if c.Rank() >= 2 {
				piece := genxio.PandaPiece(spec, c.Rank()-2)
				data = make([]float64, piece.NumElems())
				for j := range data {
					data[j] = float64(j)
				}
			}
			if err := genxio.PandaWrite(c, ctx.FS(), srv, spec, data, "a.panda"); err != nil {
				return err
			}
			_, err := genxio.PandaRead(c, ctx.FS(), srv, spec, "a.panda")
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Restart: snapshots double as checkpoints, and Rocpanda's restart
// protocol lets a run resume with a *different* number of I/O servers
// than wrote the files (Section 4.1). This example runs the integrated
// simulation for 10 steps with 2 servers, then restarts from the
// checkpoint on a world with 3 servers and runs 10 more steps — and
// verifies the final state matches a straight 20-step run exactly.
//
// Run with: go run ./examples/restart
package main

import (
	"fmt"
	"log"
	"strings"

	"genxio"
	"genxio/internal/rt"
)

func run(fs genxio.FS, ranks int, cfg genxio.Config) {
	world := genxio.NewLocalWorld(fs, 1)
	err := world.Run(ranks, func(ctx genxio.Ctx) error {
		_, err := genxio.Run(ctx, cfg)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
}

// fingerprint hashes all non-meta datasets of a snapshot.
func fingerprint(fs genxio.FS, prefix string) (map[string]string, error) {
	names, err := fs.List(prefix)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, name := range names {
		// Skip the commit manifests published next to the RHDF files.
		if !strings.HasSuffix(name, ".rhdf") {
			continue
		}
		r, err := genxio.OpenHDF(fs, name, rt.NewWallClock(), genxio.NullProfile())
		if err != nil {
			return nil, err
		}
		for _, d := range r.Datasets() {
			if d.Name == "_meta" {
				continue
			}
			raw, err := r.ReadData(d)
			if err != nil {
				return nil, err
			}
			out[d.Name] = string(raw)
		}
		r.Close()
	}
	return out, nil
}

func main() {
	spec := genxio.LabScale(0.04)
	spec.SnapshotEvery = 10
	base := genxio.Config{
		Workload:  spec,
		IO:        genxio.IORocpanda,
		Profile:   genxio.NullProfile(),
		Rocpanda:  genxio.RocpandaConfig{NumServers: 2, ActiveBuffering: true},
		BurnModel: genxio.APN,
	}

	// Golden: 20 straight steps, 6 clients + 2 servers.
	golden := base
	golden.Workload.Steps = 20
	golden.OutputDir = "golden"
	fsGolden := genxio.NewMemFS()
	run(fsGolden, 8, golden)

	// Part A: 10 steps, checkpoint at step 10 (2 servers).
	fs := genxio.NewMemFS()
	partA := base
	partA.Workload.Steps = 10
	partA.OutputDir = "partA"
	run(fs, 8, partA)
	fmt.Println("part A: wrote checkpoint partA/snap000010 with 2 servers")

	// Part B: restart from it with 3 servers (9 ranks total) and run 10
	// more steps.
	partB := base
	partB.Workload.Steps = 10
	partB.OutputDir = "partB"
	partB.RestartFrom = "partA/snap000010"
	partB.Rocpanda.NumServers = 3
	run(fs, 9, partB)
	fmt.Println("part B: restarted with 3 servers, ran 10 more steps")

	want, err := fingerprint(fsGolden, "golden/snap000020")
	if err != nil {
		log.Fatal(err)
	}
	got, err := fingerprint(fs, "partB/snap000010")
	if err != nil {
		log.Fatal(err)
	}
	if len(want) == 0 || len(want) != len(got) {
		log.Fatalf("dataset counts differ: %d vs %d", len(want), len(got))
	}
	for name, w := range want {
		if got[name] != w {
			log.Fatalf("dataset %s diverged after restart", name)
		}
	}
	fmt.Printf("verified: %d datasets of the restarted run match the straight 20-step run bit-for-bit\n", len(want))
}

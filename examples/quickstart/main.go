// Quickstart: the smallest complete GENx I/O program.
//
// Five goroutine ranks come up as an MPI-like world; Rocpanda
// initialization dedicates one as an I/O server. Each client registers two
// mesh blocks as panes of a Roccom window, fills a node-centered pressure
// attribute, and writes a snapshot through the uniform write_attribute
// interface. The snapshot is then read back into an empty window and
// verified.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"genxio"
	"genxio/internal/stats"
)

func main() {
	fs := genxio.NewMemFS()
	world := genxio.NewLocalWorld(fs, 1)

	const ranks = 5 // 4 compute clients + 1 Rocpanda server
	err := world.Run(ranks, func(ctx genxio.Ctx) error {
		// Rocpanda initialization splits the world: server ranks run
		// the service loop inside Init and return nil.
		client, err := genxio.RocpandaInit(ctx, genxio.RocpandaConfig{
			NumServers:      1,
			ActiveBuffering: true,
			Profile:         genxio.NullProfile(),
		})
		if err != nil {
			return err
		}
		if client == nil {
			return nil // this rank served I/O; all done
		}
		comm := client.Comm() // the application's communicator from now on

		// Build a window with two mesh blocks per client and a
		// pressure attribute.
		rc := genxio.NewRoccom()
		win, err := rc.NewWindow("fluid")
		if err != nil {
			return err
		}
		if err := win.NewAttribute(genxio.AttrSpec{
			Name: "pressure", Loc: genxio.NodeLoc, Type: genxio.F64, NComp: 1,
		}); err != nil {
			return err
		}
		blocks, err := genxio.GenCylinder(genxio.CylinderSpec{
			RInner: 0.1, ROuter: 0.4, Length: 1,
			BR: 1, BT: 2, BZ: 1, NodesPerBlock: 100, Spread: 0.3,
		}, 100*comm.Rank()+1, stats.NewRNG(uint64(comm.Rank())))
		if err != nil {
			return err
		}
		for _, b := range blocks {
			p, err := win.RegisterPane(b.ID, b)
			if err != nil {
				return err
			}
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] = 5e6 + float64(b.ID)
			}
		}

		// Load the I/O module through Roccom and write a snapshot: one
		// collective call, one file per server.
		if err := rc.LoadModule(client.Module(), "IO"); err != nil {
			return err
		}
		svc, err := genxio.LoadedIO(rc, "IO")
		if err != nil {
			return err
		}
		if err := svc.WriteAttribute("demo/snap0", win, "all", 0.0, 0); err != nil {
			return err
		}
		if err := svc.Sync(); err != nil {
			return err
		}

		// Restart: a fresh window with the same pane IDs, data read
		// back collectively from the shared snapshot.
		rc2 := genxio.NewRoccom()
		win2, _ := rc2.NewWindow("fluid")
		win2.NewAttribute(genxio.AttrSpec{
			Name: "pressure", Loc: genxio.NodeLoc, Type: genxio.F64, NComp: 1,
		})
		for _, b := range blocks {
			win2.RegisterPane(b.ID, b)
		}
		if err := svc.ReadAttribute("demo/snap0", win2, "all"); err != nil {
			return err
		}
		win2.EachPane(func(p *genxio.Pane) {
			pr, _ := p.Array("pressure")
			want := 5e6 + float64(p.ID)
			if pr.F64[0] != want {
				err = fmt.Errorf("pane %d read back %v, want %v", p.ID, pr.F64[0], want)
			}
		})
		if err != nil {
			return err
		}
		if comm.Rank() == 0 {
			names, _ := ctx.FS().List("demo/")
			nrhdf := 0
			for _, n := range names {
				if strings.HasSuffix(n, ".rhdf") {
					nrhdf++
				}
			}
			fmt.Printf("quickstart: %d clients wrote %d panes into %d shared file(s): %v\n",
				comm.Size(), 2*comm.Size(), nrhdf, names)
			fmt.Println("quickstart: restart verified OK")
		}
		return rc.UnloadModule("IO") // shuts the server down
	})
	if err != nil {
		log.Fatal(err)
	}
}

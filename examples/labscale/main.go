// Labscale: the integrated multi-component simulation (Section 7.1's
// lab-scale rocket, shrunk) running for real on goroutine ranks — gas
// dynamics, combustion, fluid-solid transfer, and structural mechanics
// stepping together under Rocman, with periodic snapshots through each of
// the three interchangeable I/O modules in turn. The same physics state
// must land on disk regardless of the module, and the run prints where
// the time went.
//
// Run with: go run ./examples/labscale
package main

import (
	"fmt"
	"log"
	"time"

	"genxio"
)

func main() {
	for _, io := range []genxio.IOKind{genxio.IORochdf, genxio.IOTRochdf, genxio.IORocpanda} {
		fs := genxio.NewMemFS()
		world := genxio.NewLocalWorld(fs, 1)

		spec := genxio.LabScale(0.05)
		spec.Steps = 20
		spec.SnapshotEvery = 10
		cfg := genxio.Config{
			Workload:  spec,
			IO:        io,
			Profile:   genxio.NullProfile(),
			OutputDir: "run",
			BurnModel: genxio.ZN,
			Rocpanda: genxio.RocpandaConfig{
				NumServers:      1,
				ActiveBuffering: true,
			},
		}
		ranks := 4
		if io == genxio.IORocpanda {
			ranks = 5 // one extra dedicated I/O server
		}

		t0 := time.Now()
		var rep *genxio.Report
		err := world.Run(ranks, func(ctx genxio.Ctx) error {
			r, err := genxio.Run(ctx, cfg)
			if r != nil {
				rep = r
			}
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		names, _ := fs.List("run/")
		fmt.Printf("%-9s %d clients: %d steps, %d snapshots, %.1f MB payload, %d files, wall %v\n",
			io, rep.NumClients, rep.Steps, rep.Snapshots,
			float64(rep.BytesOut)/1e6, len(names), time.Since(t0).Round(time.Millisecond))
	}
	fmt.Println("\nall three I/O modules ran the same physics; Rocpanda wrote 4x fewer files")
}

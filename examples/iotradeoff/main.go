// Iotradeoff: a miniature of the paper's Table 1 on the simulated Turing
// platform — same library code as the real runs, but in virtual time on a
// modelled cluster (dual-CPU nodes, Myrinet, one NFS server). It sweeps
// the three I/O modules at two processor counts and prints the
// application-visible I/O cost next to the actual data volume, showing
// why overlap (T-Rochdf, Rocpanda) wins and what the file-count trade-off
// is.
//
// Run with: go run ./examples/iotradeoff
package main

import (
	"fmt"
	"log"

	"genxio"
)

func main() {
	fmt.Println("simulated Turing: visible I/O cost by module (virtual seconds)")
	fmt.Printf("%8s %-10s %12s %12s %12s %8s\n",
		"procs", "module", "compute s", "visible s", "payload MB", "files")
	for _, n := range []int{16, 32} {
		for _, io := range []genxio.IOKind{genxio.IORochdf, genxio.IOTRochdf, genxio.IORocpanda} {
			plat := genxio.Turing()
			world := genxio.NewTuring(1).WithRanksPerNode(plat.CPUsPerNode)

			spec := genxio.LabScale(0.1)
			cfg := genxio.Config{
				Workload:       spec,
				IO:             io,
				Profile:        genxio.HDF4Profile(),
				BufferBW:       plat.MemcpyBW,
				ServerBufferBW: 300e6,
				StrideRealWork: 50, // charge costs; sample real arithmetic
				Rocpanda: genxio.RocpandaConfig{
					ClientServerRatio: 8,
					ActiveBuffering:   true,
				},
			}
			ranks := n
			if io == genxio.IORocpanda {
				ranks = n + n/8
			}
			var rep *genxio.Report
			err := world.Run(ranks, func(ctx genxio.Ctx) error {
				r, err := genxio.Run(ctx, cfg)
				if r != nil {
					rep = r
				}
				return err
			})
			if err != nil {
				log.Fatal(err)
			}
			names, _ := world.FSModel().Backing().List("out/snap000200")
			fmt.Printf("%8d %-10s %12.2f %12.3f %12.1f %8d\n",
				n, io, rep.ComputeTime, rep.VisibleWrite,
				float64(rep.BytesOut)/1e6, len(names))
		}
	}
	fmt.Println("\nT-Rochdf and Rocpanda hide nearly all I/O behind computation;")
	fmt.Println("Rocpanda additionally writes one file per server instead of one per process.")
}
